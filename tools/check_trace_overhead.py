#!/usr/bin/env python3
"""CI perf gate on the tracing layer's runtime overhead.

Runs the same `hisim run` workload repeatedly with tracing off and with
--trace enabled, compares the median in-process run time (the report's
"total_seconds", which excludes the trace-file write), and fails when
the traced median exceeds the untraced one by more than the allowed
factor. The ceiling (default 2.0x) is deliberately loose for noisy
shared CI hosts: the gate exists to catch tracing becoming accidentally
hot on the per-gate/per-step path -- a lock in TraceSpan, an allocation
per event -- not to certify an exact overhead number. The
disabled-mode cost (one relaxed atomic load) is below what wall-clock
timing can resolve, so only the enabled path is gated.

Usage:
    check_trace_overhead.py /path/to/hisim [--runs 5] [--max-ratio 2.0]
        [--circuit qft] [--qubits 16]
"""

import argparse
import json
import os
import statistics
import subprocess
import sys
import tempfile


def run_once(hisim, circuit, qubits, trace_path):
    cmd = [hisim, "run", circuit, f"--qubits={qubits}", "--json"]
    if trace_path:
        cmd.append(f"--trace={trace_path}")
    out = subprocess.run(cmd, check=True, capture_output=True, text=True)
    report = json.loads(out.stdout)
    return float(report["total_seconds"])


def main(argv):
    ap = argparse.ArgumentParser()
    ap.add_argument("hisim", help="path to the hisim CLI binary")
    ap.add_argument("--runs", type=int, default=5)
    ap.add_argument("--max-ratio", type=float, default=2.0,
                    help="traced/untraced median ceiling (default 2.0)")
    ap.add_argument("--circuit", default="qft")
    ap.add_argument("--qubits", type=int, default=16)
    args = ap.parse_args(argv[1:])

    with tempfile.TemporaryDirectory() as tmp:
        trace_path = os.path.join(tmp, "overhead_probe.json")
        # Alternate modes so slow drift (thermal, noisy neighbors) hits
        # both populations equally instead of biasing one.
        plain, traced = [], []
        for _ in range(args.runs):
            plain.append(run_once(args.hisim, args.circuit, args.qubits,
                                  None))
            traced.append(run_once(args.hisim, args.circuit, args.qubits,
                                   trace_path))

    base = statistics.median(plain)
    with_trace = statistics.median(traced)
    if base <= 0.0:
        print("check_trace_overhead: workload too fast to time; "
              "raise --qubits")
        return 1
    ratio = with_trace / base
    verdict = "OK" if ratio <= args.max_ratio else "FAIL"
    print(f"check_trace_overhead: {args.circuit}/{args.qubits}q "
          f"median {base * 1e3:.2f} ms untraced, "
          f"{with_trace * 1e3:.2f} ms traced -> {ratio:.3f}x "
          f"(ceiling {args.max_ratio}x) {verdict}")
    return 0 if ratio <= args.max_ratio else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
