#!/usr/bin/env python3
"""Summarize / validate a HiSVSIM Chrome-trace file (--trace=out.json).

Default mode prints two tables from the trace:

  * per-phase: for each span name, the event count, total/mean/max
    duration, and the number of distinct threads the span ran on;
  * per-category: the same totals rolled up by event category
    (engine, opt, partition, dist, sv, exchange, parallel, iqs);

plus the flat "metrics" block (counters and distribution summaries) if
the file carries one. Durations are wall-clock sums over possibly
concurrent spans, so category totals can exceed the run's wall time --
they measure work, not elapsed time.

--validate checks the event-format invariants the exporter promises
(see src/common/trace.hpp): a top-level "traceEvents" list whose
entries are ph:"X" duration events (name/cat/ts/dur/pid/tid, numeric
times, dur >= 0) or ph:"C" counter samples (name/ts/pid/tid plus a
numeric args.value), and a "metrics" object of numeric values when
present. Exit 0 = valid, 1 = findings (one per line).

Usage:
  trace_summary.py out.json            summary tables
  trace_summary.py --validate out.json format check only
  trace_summary.py --self-test         validator self-check (no file)
"""

import json
import sys
from collections import defaultdict

SPAN_KEYS = {"name", "cat", "ph", "ts", "dur", "pid", "tid"}
COUNTER_KEYS = {"name", "ph", "ts", "pid", "tid", "args"}


def _check_numeric(ev, key, where, findings):
    v = ev.get(key)
    if not isinstance(v, (int, float)) or isinstance(v, bool):
        findings.append(f"{where}: '{key}' missing or non-numeric ({v!r})")
        return None
    return v


def validate(doc):
    """Returns a list of findings (empty = the document is valid)."""
    findings = []
    if not isinstance(doc, dict):
        return ["top level is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ['top-level "traceEvents" missing or not a list']
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            findings.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph == "X":
            for key in SPAN_KEYS - {"ts", "dur"}:
                if key not in ev:
                    findings.append(f"{where}: span event missing '{key}'")
            _check_numeric(ev, "ts", where, findings)
            dur = _check_numeric(ev, "dur", where, findings)
            if dur is not None and dur < 0:
                findings.append(f"{where}: negative dur {dur}")
        elif ph == "C":
            for key in COUNTER_KEYS - {"ts", "args"}:
                if key not in ev:
                    findings.append(f"{where}: counter event missing '{key}'")
            _check_numeric(ev, "ts", where, findings)
            args = ev.get("args")
            if not isinstance(args, dict) or "value" not in args:
                findings.append(f"{where}: counter event needs args.value")
            elif not isinstance(args["value"], (int, float)) \
                    or isinstance(args["value"], bool):
                findings.append(f"{where}: args.value is non-numeric")
        else:
            findings.append(f"{where}: unknown ph {ph!r} (expected X or C)")
    metrics = doc.get("metrics")
    if metrics is not None:
        if not isinstance(metrics, dict):
            findings.append('"metrics" is not an object')
        else:
            for k, v in metrics.items():
                if not isinstance(v, (int, float)) or isinstance(v, bool):
                    findings.append(f"metrics[{k!r}] is non-numeric ({v!r})")
    return findings


class Agg:
    __slots__ = ("count", "total_us", "max_us", "tids")

    def __init__(self):
        self.count = 0
        self.total_us = 0.0
        self.max_us = 0.0
        self.tids = set()

    def add(self, dur_us, tid):
        self.count += 1
        self.total_us += dur_us
        self.max_us = max(self.max_us, dur_us)
        self.tids.add(tid)


def summarize(doc):
    by_name = defaultdict(Agg)
    by_cat = defaultdict(Agg)
    counters = 0
    for ev in doc.get("traceEvents", []):
        if ev.get("ph") == "X":
            by_name[ev.get("name", "?")].add(float(ev.get("dur", 0.0)),
                                             ev.get("tid"))
            by_cat[ev.get("cat", "?")].add(float(ev.get("dur", 0.0)),
                                           ev.get("tid"))
        elif ev.get("ph") == "C":
            counters += 1

    def table(title, rows):
        print(f"{title}:")
        print(f"  {'name':<24} {'count':>7} {'total ms':>10} {'mean us':>10} "
              f"{'max us':>10} {'tids':>5}")
        for name, a in sorted(rows.items(),
                              key=lambda kv: -kv[1].total_us):
            print(f"  {name:<24} {a.count:>7} {a.total_us / 1e3:>10.3f} "
                  f"{a.total_us / a.count:>10.1f} {a.max_us:>10.1f} "
                  f"{len(a.tids):>5}")

    table("per-phase (span name)", by_name)
    print()
    table("per-category", by_cat)
    nspans = sum(a.count for a in by_name.values())
    print(f"\n{nspans} span events, {counters} counter samples")

    metrics = doc.get("metrics")
    if isinstance(metrics, dict) and metrics:
        print("\nmetrics:")
        for k in sorted(metrics):
            print(f"  {k:<36} {metrics[k]:.9g}")


# --- self-test ---------------------------------------------------------------

_GOOD = {
    "traceEvents": [
        {"name": "compile", "cat": "engine", "ph": "X", "ts": 0.0,
         "dur": 12.5, "pid": 1, "tid": 1},
        {"name": "exchange.bytes", "ph": "C", "ts": 13.0, "pid": 1,
         "tid": 1, "args": {"value": 4096}},
    ],
    "displayTimeUnit": "ms",
    "metrics": {"pool.tasks": 8, "apply.seconds.sum": 0.125},
}

# Each must produce at least one finding.
_BAD = [
    [],                                                   # not an object
    {},                                                   # no traceEvents
    {"traceEvents": [{"ph": "B", "name": "x"}]},          # unknown phase
    {"traceEvents": [{"ph": "X", "name": "x", "cat": "c", "ts": "0",
                      "dur": 1, "pid": 1, "tid": 1}]},    # non-numeric ts
    {"traceEvents": [{"ph": "X", "name": "x", "cat": "c", "ts": 0,
                      "dur": -1, "pid": 1, "tid": 1}]},   # negative dur
    {"traceEvents": [{"ph": "C", "name": "x", "ts": 0, "pid": 1,
                      "tid": 1, "args": {}}]},            # no args.value
    {"traceEvents": [], "metrics": {"k": "v"}},           # non-numeric metric
]


def self_test():
    failures = []
    good = validate(_GOOD)
    if good:
        failures.append(f"valid document flagged: {good}")
    for i, doc in enumerate(_BAD):
        if not validate(doc):
            failures.append(f"bad document #{i} passed validation")
    for f in failures:
        print(f"self-test FAIL: {f}")
    if not failures:
        print(f"self-test OK: 1 good + {len(_BAD)} bad documents")
    return 1 if failures else 0


def main(argv):
    args = argv[1:]
    if args and args[0] == "--self-test":
        return self_test()
    check_only = False
    if args and args[0] == "--validate":
        check_only = True
        args = args[1:]
    if len(args) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(args[0], encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            print(f"trace_summary: {args[0]}: not JSON: {e}")
            return 1
    findings = validate(doc)
    for msg in findings:
        print(f"trace_summary: {args[0]}: {msg}")
    if findings:
        print(f"trace_summary: {len(findings)} finding(s)")
        return 1
    if check_only:
        nev = len(doc.get("traceEvents", []))
        print(f"trace_summary: {args[0]} valid ({nev} events)")
        return 0
    summarize(doc)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
