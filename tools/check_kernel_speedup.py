#!/usr/bin/env python3
"""CI perf gate over bench_kernels --json output.

Reads the bench payload from stdin (or a file argument) and fails unless
the simd tier beats scalar on the dense_1q case by at least the floor
(default 1.5x, override with --min). The floor is deliberately far below
the recorded ~2.4x (BENCH_kernels.json): the gate exists to catch the
vector tier silently degrading to scalar-ish throughput — a dispatch
regression or a de-vectorized kernel — not to pin an exact number on
noisy shared CI hosts.

Usage:
    bench_kernels --json --quick | check_kernel_speedup.py [--min 1.5]
    check_kernel_speedup.py bench_output.json
"""

import argparse
import json
import sys


def main(argv):
    ap = argparse.ArgumentParser()
    ap.add_argument("payload", nargs="?", help="bench JSON file (default stdin)")
    ap.add_argument("--case", default="dense_1q")
    ap.add_argument("--tier", default="simd")
    ap.add_argument("--min", type=float, default=1.5,
                    help="minimum speedup_vs_scalar (default 1.5)")
    args = ap.parse_args(argv[1:])

    if args.payload:
        with open(args.payload, encoding="utf-8") as f:
            data = json.load(f)
    else:
        data = json.load(sys.stdin)

    if not data.get("simd_available", False):
        # Nothing to gate on a non-AVX2 host; the containment lint and the
        # scalar test pass still cover that configuration.
        print("check_kernel_speedup: simd tier unavailable on this host; "
              "skipping")
        return 0

    for case in data.get("cases", []):
        if case.get("case") != args.case:
            continue
        for tier in case.get("tiers", []):
            if tier.get("tier") != args.tier:
                continue
            speedup = float(tier["speedup_vs_scalar"])
            verdict = "OK" if speedup >= args.min else "FAIL"
            print(f"check_kernel_speedup: {args.case}/{args.tier} "
                  f"{speedup:.3f}x vs scalar (floor {args.min}x) {verdict}")
            return 0 if speedup >= args.min else 1
        print(f"check_kernel_speedup: case '{args.case}' has no tier "
              f"'{args.tier}'")
        return 1
    print(f"check_kernel_speedup: no case '{args.case}' in payload")
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
