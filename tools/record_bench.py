#!/usr/bin/env python3
"""Append one bench_kernels data point to BENCH_kernels.json.

Runs the bench binary with --json, wraps its payload with the commit and
a UTC timestamp, and appends it to the trajectory file at the repo root
(a JSON list, one entry per recorded run). The file is the repo's
recorded perf trajectory: comparing the latest entry against older ones
shows when a kernel change moved throughput.

Usage:
    python3 tools/record_bench.py [path/to/bench_kernels] [bench args...]

Default binary: build/bench_kernels (run from the repo root). Extra args
are passed through (e.g. --qubits=12). --json is always added.
"""

import datetime
import json
import pathlib
import subprocess
import sys


def main() -> int:
    repo_root = pathlib.Path(__file__).resolve().parent.parent
    args = sys.argv[1:]
    binary = args.pop(0) if args and not args[0].startswith("-") else str(
        repo_root / "build" / "bench_kernels")

    cmd = [binary, "--json"] + args
    out = subprocess.run(cmd, check=True, capture_output=True, text=True)
    data = json.loads(out.stdout)

    commit = subprocess.run(
        ["git", "-C", str(repo_root), "rev-parse", "--short", "HEAD"],
        check=False, capture_output=True, text=True).stdout.strip() or None

    entry = {
        "recorded_utc": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "commit": commit,
        "data": data,
    }

    trajectory_path = repo_root / "BENCH_kernels.json"
    trajectory = []
    if trajectory_path.exists():
        trajectory = json.loads(trajectory_path.read_text())
        if not isinstance(trajectory, list):
            raise SystemExit(f"{trajectory_path} is not a JSON list")
    trajectory.append(entry)
    trajectory_path.write_text(json.dumps(trajectory, indent=1) + "\n")

    cases = data.get("cases", [])
    best = {
        c["case"]: max((t["speedup_vs_scalar"] for t in c["tiers"]),
                       default=1.0)
        for c in cases
    }
    print(f"recorded entry {len(trajectory)} -> {trajectory_path}")
    for name, speedup in best.items():
        print(f"  {name:<14} best speedup {speedup:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
